#!/usr/bin/env python3
"""Validate and compare fcc-bench reports (fcc-bench/1 and fcc-quality/1).

Validate a report's schema (auto-detected from the "schema" field):

    bench_compare.py --validate BENCH.json
    bench_compare.py --validate QUALITY.json

Compare a fresh run against the checked-in baseline (the CI perf and
quality gates — both sides must carry the same schema):

    bench_compare.py bench/baseline.json BENCH.json \
        [--time-tol 0.15] [--mem-tol 0.05]
    bench_compare.py bench/quality_baseline.json QUALITY.json

Perf reports (fcc-bench/1): a benchmark regresses when its median time
exceeds baseline by more than the time tolerance, or its deterministic peak
bytes drift beyond the memory tolerance in either direction.  A baseline
entry may carry an optional "time_tol" field overriding the global time
tolerance for that benchmark (for workloads known to be noisier).
Instructions retired are reported informationally when both sides have
them, but never gate: CI hardware frequently lacks counters, and a gate
that only fires on some runners would be flaky by construction.

Quality reports (fcc-quality/1): the counters are deterministic, so the
default gate is exact equality on every code-quality counter of every row.
A baseline row may carry an optional "tol" field (fraction, e.g. 0.02)
relaxing the gate for that row's spill-traffic counters to a drift band —
for intentional heuristic churn where re-pinning per commit is noise.
Correctness columns never get a tolerance: a fresh report with nonzero
"diverged" or "alloc_failures" anywhere fails regardless of baseline.

Exit status: 0 ok, 1 regression or validation failure, 2 usage error.
"""

import argparse
import json
import sys

SCHEMA = "fcc-bench/1"
QUALITY_SCHEMA = "fcc-quality/1"
TOP_FIELDS = {
    "schema": str,
    "suite": str,
    "warmup": int,
    "repeats": int,
    "benchmarks": list,
}
BENCH_FIELDS = {
    "name": str,
    "workload": str,
    "reps": int,
    "ns_median": int,
    "ns_mad": int,
    "peak_bytes": int,
}
QUALITY_TOP_FIELDS = {
    "schema": str,
    "suite": str,
    "routines": int,
    "rows": list,
}
QUALITY_ROW_FIELDS = {
    "name": str,
    "pipeline": str,
    "machine": str,
    "functions": int,
    "static_copies": int,
    "spill_stores": int,
    "reloads": int,
    "spill_slots": int,
    "ranges_split": int,
    "max_registers_used": int,
    "dynamic_copies": int,
    "dynamic_spill_ops": int,
    "diverged": int,
    "alloc_failures": int,
}
# Counters a baseline row's "tol" field may relax. Correctness columns
# (diverged, alloc_failures) and structural ones (functions) stay exact.
QUALITY_TOLERABLE = (
    "static_copies", "spill_stores", "reloads", "spill_slots",
    "ranges_split", "max_registers_used", "dynamic_copies",
    "dynamic_spill_ops",
)


def validate_quality(report, path):
    """Schema check for fcc-quality/1 reports."""
    errors = []
    for field, kind in QUALITY_TOP_FIELDS.items():
        if field not in report:
            errors.append(f"{path}: missing field '{field}'")
        elif not isinstance(report[field], kind) or isinstance(
                report[field], bool):
            errors.append(f"{path}: field '{field}' is not {kind.__name__}")
    seen = set()
    for i, row in enumerate(report.get("rows", [])):
        where = f"{path}: rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} is not an object")
            continue
        for field, kind in QUALITY_ROW_FIELDS.items():
            if field not in row:
                errors.append(f"{where} missing field '{field}'")
            elif not isinstance(row[field], kind) or isinstance(
                    row[field], bool):
                errors.append(f"{where} field '{field}' is not {kind.__name__}")
        tol = row.get("tol")
        if tol is not None and (not isinstance(tol, (int, float))
                                or isinstance(tol, bool) or tol < 0):
            errors.append(f"{where} field 'tol' is not a non-negative number")
        name = row.get("name")
        if name in seen:
            errors.append(f"{where} duplicate row name {name!r}")
        seen.add(name)
    return errors


def validate(report, path):
    """Returns a list of schema-violation messages (empty when valid)."""
    errors = []
    if not isinstance(report, dict):
        return [f"{path}: top level is not an object"]
    if report.get("schema") == QUALITY_SCHEMA:
        return validate_quality(report, path)
    for field, kind in TOP_FIELDS.items():
        if field not in report:
            errors.append(f"{path}: missing field '{field}'")
        elif not isinstance(report[field], kind):
            errors.append(f"{path}: field '{field}' is not {kind.__name__}")
    if report.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {report.get('schema')!r}, "
                      f"expected {SCHEMA!r}")
    seen = set()
    for i, bench in enumerate(report.get("benchmarks", [])):
        where = f"{path}: benchmarks[{i}]"
        if not isinstance(bench, dict):
            errors.append(f"{where} is not an object")
            continue
        for field, kind in BENCH_FIELDS.items():
            if field not in bench:
                errors.append(f"{where} missing field '{field}'")
            elif not isinstance(bench[field], kind) or isinstance(
                    bench[field], bool):
                errors.append(f"{where} field '{field}' is not {kind.__name__}")
        # instructions_retired is optional: fcc-bench omits it when hardware
        # counters are unavailable (null is tolerated for older reports).
        retired = bench.get("instructions_retired")
        if retired is not None and (not isinstance(retired, int)
                                    or isinstance(retired, bool)):
            errors.append(f"{where} field 'instructions_retired' is neither "
                          "int nor absent/null")
        name = bench.get("name")
        if name in seen:
            errors.append(f"{where} duplicate benchmark name {name!r}")
        seen.add(name)
    return errors


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)


def compare_quality(baseline, fresh):
    """Prints a per-row quality table; returns regression messages."""
    base_by_name = {r["name"]: r for r in baseline["rows"]}
    fresh_by_name = {r["name"]: r for r in fresh["rows"]}
    regressions = []

    # Correctness gates first, over every fresh row — including rows the
    # baseline has never seen.
    for row in fresh["rows"]:
        for field in ("diverged", "alloc_failures"):
            if row[field]:
                regressions.append(
                    f"{row['name']}: {field} = {row[field]} (must be 0)")

    print(f"{'row':<30} {'column':<20} {'base':>10} {'fresh':>10}")
    for name, base in base_by_name.items():
        new = fresh_by_name.get(name)
        if new is None:
            regressions.append(f"{name}: missing from fresh report")
            continue
        tol = base.get("tol", 0.0)
        flags = []
        for field in QUALITY_ROW_FIELDS:
            if field in ("name", "pipeline", "machine"):
                continue
            bv, nv = base[field], new[field]
            if bv == nv:
                continue
            print(f"{name:<30} {field:<20} {bv:>10} {nv:>10}")
            if field in QUALITY_TOLERABLE and tol > 0:
                if abs(nv - bv) <= tol * bv:
                    continue
                flags.append(f"{field} {bv} -> {nv} (beyond {tol:.0%})")
            else:
                flags.append(f"{field} {bv} -> {nv}")
        if flags:
            regressions.append(f"{name}: " + "; ".join(flags))
        else:
            print(f"{name:<30} {'(all columns match)':<20}")

    for name in fresh_by_name:
        if name not in base_by_name:
            print(f"{name:<30} (new row, no baseline)")
    return regressions


def compare(baseline, fresh, time_tol, mem_tol):
    """Prints a comparison table; returns the list of regression messages."""
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    fresh_by_name = {b["name"]: b for b in fresh["benchmarks"]}
    regressions = []

    print(f"{'benchmark':<28} {'base ns':>12} {'fresh ns':>12} "
          f"{'ratio':>7} {'base bytes':>12} {'fresh bytes':>12}")
    for name, base in base_by_name.items():
        new = fresh_by_name.get(name)
        if new is None:
            regressions.append(f"{name}: missing from fresh report")
            continue
        tol = base.get("time_tol", time_tol)
        ratio = (new["ns_median"] / base["ns_median"]
                 if base["ns_median"] else float("inf"))
        flags = []
        if base["ns_median"] and ratio > 1.0 + tol:
            flags.append(f"time {ratio:.2f}x > +{tol:.0%}")
        base_bytes, new_bytes = base["peak_bytes"], new["peak_bytes"]
        if base_bytes and abs(new_bytes - base_bytes) > mem_tol * base_bytes:
            flags.append(f"peak bytes {base_bytes} -> {new_bytes} "
                         f"(beyond {mem_tol:.0%})")
        marker = "  REGRESSED: " + "; ".join(flags) if flags else ""
        print(f"{name:<28} {base['ns_median']:>12} {new['ns_median']:>12} "
              f"{ratio:>7.2f} {base_bytes:>12} {new_bytes:>12}{marker}")
        if flags:
            regressions.append(f"{name}: " + "; ".join(flags))
        bi, ni = base.get("instructions_retired"), new.get(
            "instructions_retired")
        if bi and ni:
            print(f"{'':<28} instructions retired: {bi} -> {ni} "
                  f"({ni / bi:.3f}x, informational)")

    for name in fresh_by_name:
        if name not in base_by_name:
            print(f"{name:<28} (new benchmark, no baseline)")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("reports", nargs="+",
                        help="--validate: one report; compare: baseline fresh")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the report(s) and exit")
    parser.add_argument("--time-tol", type=float, default=0.15,
                        help="allowed median-time growth (default 0.15)")
    parser.add_argument("--mem-tol", type=float, default=0.05,
                        help="allowed peak-bytes drift (default 0.05)")
    args = parser.parse_args()

    if args.validate:
        errors = []
        for path in args.reports:
            report = load(path)
            file_errors = validate(report, path)
            errors += file_errors
            if not file_errors:
                print(f"{path}: valid {report.get('schema')}")
        for err in errors:
            print(err, file=sys.stderr)
        return 1 if errors else 0

    if len(args.reports) != 2:
        parser.error("compare mode takes exactly: baseline fresh")
    baseline, fresh = load(args.reports[0]), load(args.reports[1])
    for report, path in ((baseline, args.reports[0]), (fresh,
                                                       args.reports[1])):
        errors = validate(report, path)
        if errors:
            for err in errors:
                print(err, file=sys.stderr)
            return 1
    if baseline.get("schema") != fresh.get("schema"):
        print(f"bench_compare: schema mismatch: {args.reports[0]} is "
              f"{baseline.get('schema')!r}, {args.reports[1]} is "
              f"{fresh.get('schema')!r}", file=sys.stderr)
        return 1

    if baseline.get("schema") == QUALITY_SCHEMA:
        regressions = compare_quality(baseline, fresh)
    else:
        regressions = compare(baseline, fresh, args.time_tol, args.mem_tol)
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for reg in regressions:
            print(f"  {reg}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
