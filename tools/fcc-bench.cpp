//===- tools/fcc-bench.cpp - Unified benchmark driver ---------------------===//
//
// One driver for the repository's performance story: named suites of
// benchmarks over the paper pipelines and the allocation-lean support
// structures, measured with an explicit warmup phase and median/MAD over
// repetitions, emitted as a fixed-schema JSON report (BENCH.json) that
// tools/bench_compare.py diffs against bench/baseline.json in CI.
//
//   fcc-bench --suite=ci|smoke [options]
//
//   --suite=NAME   which suite to run (required): 'ci' is the perf gate's
//                  workload, 'smoke' a seconds-long variant for ctest
//   --analysis=fast|legacy|dsu+sparse|chk+dense|dsu+dense|chk+sparse
//                  analysis strategy for the pipeline/* benchmarks (default
//                  fast); the per-analysis benchmarks (domtree/build,
//                  liveness/solve, liveness/sparse_solve) pin their own
//                  algorithm so A/B artifacts stay comparable
//   --out=PATH     write the JSON report to PATH ('-' for stdout, default)
//   --warmup=N     override the suite's warmup iterations
//   --repeats=N    override the suite's timed repetitions
//   --quality      measure code quality instead of speed: run every
//                  pipeline x machine configuration over the suite's
//                  routines, allocate registers with spill rewriting,
//                  execute the result, and report the deterministic
//                  quality counters (schema fcc-quality/1 below)
//   --list         print the suite's benchmark names and exit
//
// Schema (fcc-bench/1): ns_median and ns_mad are the run-to-run unstable
// fields. instructions_retired is emitted only when hardware counters are
// actually available (perf_event_open can be denied in containers and CI;
// see the benchmarking notes in DESIGN.md) — absent means "not measured",
// and bench_compare.py treats the field as optional.
//
//   {"schema": "fcc-bench/1", "suite": S, "warmup": W, "repeats": R,
//    "benchmarks": [{"name", "workload", "reps", "ns_median", "ns_mad",
//                    "peak_bytes"[, "instructions_retired"]}, ...]}
//
// Schema (fcc-quality/1): every field is a pure function of the corpus —
// no timings — so the CI quality gate compares rows exactly by default.
// "diverged" counts routines whose post-allocation execution differed from
// the unoptimized reference (must be 0); "alloc_failures" counts routines
// the spill rewriter could not converge on (must be 0).
//
//   {"schema": "fcc-quality/1", "suite": S, "routines": N,
//    "rows": [{"name", "pipeline", "machine"[, "passes"], "functions",
//              "static_copies", "spill_stores", "reloads", "spill_slots",
//              "ranges_split", "max_registers_used", "dynamic_copies",
//              "dynamic_spill_ops", "diverged", "alloc_failures"}, ...]}
//
// Optimized-pipeline rows carry a "passes" field (the sequence run before
// coalescing, e.g. "sccp,adce,pre"); base rows omit it, keeping their
// bytes identical to the pre-pass-layer schema.
//
// Exit status: 0 ok (quality mode: and no divergence/allocation failure),
// 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFGUtils.h"
#include "analysis/DominatorTree.h"
#include "analysis/Liveness.h"
#include "baseline/InterferenceGraph.h"
#include "coalesce/DominanceForest.h"
#include "coalesce/FastCoalescer.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "pipeline/Pipeline.h"
#include "regalloc/SpillRewriter.h"
#include "server/ResultCache.h"
#include "service/CompilationService.h"
#include "service/WorkUnit.h"
#include "ssa/SSABuilder.h"
#include "support/Arena.h"
#include "support/ArgParse.h"
#include "support/PerfCounters.h"
#include "support/SparseSet.h"
#include "workload/KernelSuite.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace fcc;

namespace {

/// Workload knobs one suite fixes for every benchmark.
struct SuiteParams {
  unsigned Warmup;
  unsigned Repeats;
  unsigned PaperRoutines; ///< Prefix of paperSuite() the pipeline runs use.
  unsigned GenBudget;     ///< Generator size budget for structure runs.
};

/// One benchmark: Run performs a single iteration and returns the
/// deterministic byte footprint of the structures it built.
struct Benchmark {
  std::string Name;
  std::string Workload;
  std::function<size_t()> Run;
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t medianOf(std::vector<uint64_t> Samples) {
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

/// Median absolute deviation: the robust spread the comparator reports
/// alongside the median (a run with high MAD is too noisy to gate on).
uint64_t madOf(const std::vector<uint64_t> &Samples, uint64_t Median) {
  std::vector<uint64_t> Dev;
  Dev.reserve(Samples.size());
  for (uint64_t S : Samples)
    Dev.push_back(S > Median ? S - Median : Median - S);
  return medianOf(std::move(Dev));
}

/// A generated function taken through critical-edge splitting and SSA
/// construction, with the analyses the structure benchmarks consume.
struct SSAFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<Liveness> LV;

  explicit SSAFixture(unsigned SizeBudget, uint64_t Seed) {
    M = std::make_unique<Module>();
    GeneratorOptions Opts;
    Opts.Seed = Seed;
    Opts.SizeBudget = SizeBudget;
    Opts.NumVars = 14;
    F = generateProgram(*M, "bench", Opts);
    splitCriticalEdges(*F);
    DT = std::make_unique<DominatorTree>(*F);
    SSABuildOptions BuildOpts;
    BuildOpts.FoldCopies = true;
    buildSSA(*F, *DT, BuildOpts);
    LV = std::make_unique<Liveness>(*F);
  }
};

std::string scaleTag(const SuiteParams &P) {
  return "paper" + std::to_string(P.PaperRoutines) + "/gen" +
         std::to_string(P.GenBudget);
}

/// Builds the benchmark list for \p P. Every suite runs the same names so
/// baselines stay comparable; only the workload sizes differ. \p Analyses
/// backs the pipeline/* runs; the per-analysis benchmarks pin their own
/// algorithm regardless.
std::vector<Benchmark> buildSuite(const SuiteParams &P,
                                  AnalysisStrategy Analyses) {
  std::vector<Benchmark> Benches;
  std::string Tag = scaleTag(P);

  // Table 2's clock: the paper pipelines end to end (materialize + compile)
  // over a deterministic prefix of the paper suite.
  auto AddPipeline = [&](const char *Name, PipelineKind Kind) {
    auto Specs =
        std::make_shared<std::vector<RoutineSpec>>(paperSuite(P.PaperRoutines));
    Benches.push_back({Name, Tag, [Specs, Kind, Analyses]() -> size_t {
                         size_t Peak = 0;
                         PipelineOptions Opts;
                         Opts.Kind = Kind;
                         Opts.Analyses = Analyses;
                         for (const RoutineSpec &Spec : *Specs) {
                           auto M = Spec.materialize();
                           for (auto &F : M->functions()) {
                             PipelineResult R = runPipeline(*F, Opts);
                             Peak = std::max(Peak, R.PeakBytes);
                           }
                         }
                         return Peak;
                       }});
  };
  AddPipeline("pipeline/new", PipelineKind::New);
  AddPipeline("pipeline/standard", PipelineKind::Standard);
  AddPipeline("pipeline/briggs_improved", PipelineKind::BriggsImproved);

  // The retrofitted per-function analyses and structures, each over one
  // generated SSA function (guards Tables 1 and 3's structure costs).
  auto Fix = std::make_shared<SSAFixture>(P.GenBudget, /*Seed=*/77);

  // The two liveness solvers over the identical SSA function: solve pins
  // the dense fixed point, sparse_solve the per-variable def-use walk, so
  // one artifact carries the head-to-head the A/B methodology in
  // EXPERIMENTS.md reads off. domtree/build likewise pins the DSU
  // algorithm (the CHK cost is visible through pipeline/* under
  // --analysis=legacy).
  Benches.push_back({"liveness/solve", Tag, [Fix]() -> size_t {
                       Liveness LV(*Fix->F, LivenessAlgorithm::Dense);
                       return LV.bytes();
                     }});

  Benches.push_back({"liveness/sparse_solve", Tag, [Fix]() -> size_t {
                       Liveness LV(*Fix->F, LivenessAlgorithm::Sparse);
                       return LV.bytes();
                     }});

  Benches.push_back({"domtree/build", Tag, [Fix]() -> size_t {
                       DominatorTree DT(*Fix->F, DomAlgorithm::DSU);
                       return DT.bytes();
                     }});

  Benches.push_back({"coalesce/partition", Tag, [Fix]() -> size_t {
                       FastCoalescer Co(*Fix->F, *Fix->DT, *Fix->LV);
                       Co.computePartition();
                       return Co.stats().PeakBytes;
                     }});

  {
    // One forest member per block: the worst-case single-set forest.
    auto Members = std::make_shared<std::vector<ForestMember>>();
    for (const auto &B : Fix->F->blocks())
      Members->push_back(
          {Fix->F->variable(B->id() % Fix->F->numVariables()), B.get(), 1});
    Benches.push_back({"domforest/build", Tag, [Fix, Members]() -> size_t {
                         DominanceForest DF(*Members, *Fix->DT);
                         return DF.bytes();
                       }});
  }

  Benches.push_back({"igraph/adjacency_build", Tag, [Fix]() -> size_t {
                       InterferenceGraph::BuildOptions Opts;
                       Opts.BuildAdjacencyLists = true;
                       InterferenceGraph G(*Fix->F, *Fix->LV, Opts);
                       return G.bytes();
                     }});

  // The daemon's serving costs: one batch of the paper workload through a
  // cache-attached service, cold (fresh cache every iteration — every unit
  // parses, verifies, compiles and publishes) versus warm (a persistent
  // cache pre-warmed once — every unit is an exact-text hit that skips
  // parsing entirely). Their ratio is the headline warm/cold latency
  // improvement EXPERIMENTS.md tracks.
  {
    auto Units = std::make_shared<std::vector<WorkUnit>>();
    for (const RoutineSpec &Spec : paperSuite(P.PaperRoutines))
      Units->push_back(Spec.Source.empty()
                           ? WorkUnit::fromGenerator(Spec.Name, Spec.GenOpts)
                           : WorkUnit::fromSource(Spec.Name, Spec.Source));
    ServiceOptions SO;
    SO.Jobs = 1; // Latency, not throughput: keep the pool out of the tail.

    Benches.push_back({"server/cold_qps", Tag, [Units, SO]() -> size_t {
                         ResultCache Cache(
                             ResultCache::Options{64u << 20, /*Shards=*/4});
                         ServiceOptions Opts = SO;
                         Opts.Cache = &Cache;
                         CompilationService Service(Opts);
                         BatchReport R = Service.run(*Units);
                         return Cache.occupancy().Bytes + R.totals().Failed;
                       }});

    auto WarmCache = std::make_shared<ResultCache>(
        ResultCache::Options{64u << 20, /*Shards=*/4});
    {
      ServiceOptions Opts = SO;
      Opts.Cache = WarmCache.get();
      CompilationService(Opts).run(*Units); // Pre-warm once, at build time.
    }
    Benches.push_back({"server/warm_qps", Tag,
                       [Units, SO, WarmCache]() -> size_t {
                         ServiceOptions Opts = SO;
                         Opts.Cache = WarmCache.get();
                         CompilationService Service(Opts);
                         BatchReport R = Service.run(*Units);
                         return R.totals().Functions;
                       }});
  }

  // Micro: arena churn in the coalescer's merge pattern — many short
  // arrays, wholesale reset — and sparse-set churn in the scratch-map
  // pattern. Sized off GenBudget so suites scale together.
  unsigned Micro = P.GenBudget * 64;
  Benches.push_back(
      {"arena/churn", "iters" + std::to_string(Micro), [Micro]() -> size_t {
         Arena A(4096);
         for (unsigned Round = 0; Round != 8; ++Round) {
           for (unsigned I = 0; I != Micro; ++I) {
             unsigned *P = A.allocateArray<unsigned>((I % 13) + 2);
             P[0] = I; // touch the memory
           }
           A.reset();
         }
         return A.bytesReserved();
       }});
  Benches.push_back(
      {"sparseset/churn", "iters" + std::to_string(Micro), [Micro]() -> size_t {
         SparseSet S;
         S.resizeUniverse(1024);
         unsigned Hits = 0;
         for (unsigned Round = 0; Round != 8; ++Round) {
           for (unsigned I = 0; I != Micro; ++I) {
             S.insert((I * 7) & 1023);
             Hits += S.contains((I * 13) & 1023);
           }
           S.clear();
         }
         // Fold Hits in so the loop cannot be optimized out.
         return S.bytes() + (Hits & 1);
       }});

  return Benches;
}

/// One pipeline x machine configuration's quality aggregate over the
/// suite (schema fcc-quality/1). Every field is deterministic.
struct QualityRow {
  std::string Name;     ///< "quality/<pipeline>[+<passes>]/<machine>"
  std::string Pipeline; ///< pipelineName()
  std::string Machine;  ///< canonical MachineModel name
  std::string Passes;   ///< passSequenceName(); "" for the base rows
  unsigned Functions = 0;
  uint64_t StaticCopies = 0;
  uint64_t SpillStores = 0;
  uint64_t Reloads = 0;
  uint64_t SpillSlots = 0;
  uint64_t RangesSplit = 0;
  uint64_t MaxRegistersUsed = 0;
  uint64_t DynamicCopies = 0;
  uint64_t DynamicSpillOps = 0;
  /// Routines whose post-allocation execution differed from the
  /// unoptimized reference (return value or completion). Must be 0.
  unsigned Diverged = 0;
  /// Routines the spill rewriter failed to converge on. Must be 0.
  unsigned AllocFailures = 0;
};

/// Runs every pipeline x machine configuration over \p Specs and fills one
/// QualityRow per configuration. The reference execution (unoptimized
/// materialization on the routine's fixed Table 4 arguments) is computed
/// once per routine and compared against every configuration's output.
std::vector<QualityRow> runQualitySuite(const std::vector<RoutineSpec> &Specs) {
  const PipelineKind Kinds[] = {PipelineKind::New, PipelineKind::Standard,
                                PipelineKind::BriggsImproved};
  const char *Machines[] = {"uniform2", "uniform4", "uniform8", "dsp"};

  struct Variant {
    PipelineKind Kind;
    const char *Machine;
    const char *Passes; // passSequenceName spelling; "" = no opt stage
  };
  std::vector<Variant> Variants;
  for (PipelineKind Kind : Kinds)
    for (const char *MachineName : Machines)
      Variants.push_back({Kind, MachineName, ""});
  // Optimized-pipeline rows: pin how the pass layer shifts copy and spill
  // counts. The sccp,adce vs sccp,adce,pre vs pre,sccp,adce trio isolates
  // PRE's contribution and the phase-ordering effect on the same machine;
  // the uniform2 and dsp rows measure how PRE's extended live ranges feed
  // spill pressure and banked allocation; the Standard row keeps the
  // cross-pipeline comparison honest over identical optimized input. The
  // Briggs pipelines reject passes (their live-range webs assume
  // unoptimized SSA), so no optimized Briggs rows exist.
  const Variant OptVariants[] = {
      {PipelineKind::New, "uniform8", "sccp,adce"},
      {PipelineKind::New, "uniform8", "sccp,adce,pre"},
      {PipelineKind::New, "uniform8", "pre,sccp,adce"},
      {PipelineKind::New, "uniform2", "sccp,adce,pre"},
      {PipelineKind::New, "dsp", "sccp,adce,pre"},
      {PipelineKind::Standard, "uniform8", "sccp,adce,pre"},
  };
  Variants.insert(Variants.end(), std::begin(OptVariants),
                  std::end(OptVariants));

  // Reference behavior, once per routine x function.
  struct RefExec {
    bool Completed;
    int64_t ReturnValue;
  };
  std::vector<std::vector<RefExec>> Refs(Specs.size());
  Interpreter Interp;
  for (size_t S = 0; S != Specs.size(); ++S) {
    auto M = Specs[S].materialize();
    for (auto &F : M->functions()) {
      ExecutionResult R = Interp.run(*F, Specs[S].Args);
      Refs[S].push_back({R.Completed, R.ReturnValue});
    }
  }

  std::vector<QualityRow> Rows;
  for (const Variant &V : Variants) {
    MachineModel MM;
    if (!parseMachineModel(V.Machine, MM))
      continue; // Unreachable: the names above are all canonical.
    std::vector<PassKind> Passes;
    if (!parsePassSequence(V.Passes, Passes))
      continue; // Unreachable: the sequences above are all canonical.
    QualityRow Row;
    Row.Pipeline = pipelineName(V.Kind);
    Row.Machine = MM.Name;
    Row.Passes = passSequenceName(Passes);
    Row.Name = "quality/" + Row.Pipeline +
               (Row.Passes.empty() ? "" : "+" + Row.Passes) + "/" +
               Row.Machine;

    for (size_t S = 0; S != Specs.size(); ++S) {
      auto M = Specs[S].materialize();
      bool RoutineDiverged = false, RoutineFailed = false;
      size_t FnIndex = 0;
      for (auto &F : M->functions()) {
        PipelineOptions Pipe;
        Pipe.Kind = V.Kind;
        Pipe.Machine = &MM;
        Pipe.Passes = Passes;
        PipelineResult R;
        try {
          R = runPipeline(*F, Pipe);
        } catch (const std::exception &) {
          RoutineFailed = true;
          ++FnIndex;
          continue;
        }
        ++Row.Functions;
        Row.StaticCopies += R.StaticCopies;
        Row.SpillStores += R.SpillStores;
        Row.Reloads += R.Reloads;
        Row.SpillSlots += R.SpillSlots;
        Row.RangesSplit += R.RangesSplit;
        Row.MaxRegistersUsed =
            std::max<uint64_t>(Row.MaxRegistersUsed, R.RegistersUsed);

        ExecutionResult E = Interp.run(*F, Specs[S].Args);
        Row.DynamicCopies += E.CopiesExecuted;
        Row.DynamicSpillOps += E.SpillOpsExecuted;
        const RefExec &Ref = Refs[S][FnIndex++];
        if (E.Completed != Ref.Completed ||
            (E.Completed && E.ReturnValue != Ref.ReturnValue))
          RoutineDiverged = true;
      }
      Row.Diverged += RoutineDiverged;
      Row.AllocFailures += RoutineFailed;
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

void writeQualityJson(std::FILE *Out, const std::string &Suite,
                      unsigned Routines,
                      const std::vector<QualityRow> &Rows) {
  std::fprintf(Out,
               "{\"schema\":\"fcc-quality/1\",\"suite\":\"%s\","
               "\"routines\":%u,\"rows\":[",
               Suite.c_str(), Routines);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const QualityRow &R = Rows[I];
    // "passes" appears only on optimized rows, so the base rows stay
    // byte-identical to the pre-pass-layer schema.
    std::string PassesField =
        R.Passes.empty() ? "" : "\"passes\":\"" + R.Passes + "\",";
    std::fprintf(
        Out,
        "%s\n  {\"name\":\"%s\",\"pipeline\":\"%s\",\"machine\":\"%s\","
        "%s\"functions\":%u,"
        "\"static_copies\":%llu,\"spill_stores\":%llu,\"reloads\":%llu,"
        "\"spill_slots\":%llu,\"ranges_split\":%llu,"
        "\"max_registers_used\":%llu,\"dynamic_copies\":%llu,"
        "\"dynamic_spill_ops\":%llu,\"diverged\":%u,\"alloc_failures\":%u}",
        I ? "," : "", R.Name.c_str(), R.Pipeline.c_str(), R.Machine.c_str(),
        PassesField.c_str(), R.Functions,
        static_cast<unsigned long long>(R.StaticCopies),
        static_cast<unsigned long long>(R.SpillStores),
        static_cast<unsigned long long>(R.Reloads),
        static_cast<unsigned long long>(R.SpillSlots),
        static_cast<unsigned long long>(R.RangesSplit),
        static_cast<unsigned long long>(R.MaxRegistersUsed),
        static_cast<unsigned long long>(R.DynamicCopies),
        static_cast<unsigned long long>(R.DynamicSpillOps), R.Diverged,
        R.AllocFailures);
  }
  std::fprintf(Out, "\n]}\n");
}

struct BenchRecord {
  std::string Name;
  std::string Workload;
  unsigned Reps;
  uint64_t NsMedian;
  uint64_t NsMad;
  size_t PeakBytes;
  bool HaveInstructions;
  uint64_t Instructions;
};

BenchRecord measure(const Benchmark &B, unsigned Warmup, unsigned Repeats,
                    InstructionCounter &Counter) {
  for (unsigned I = 0; I != Warmup; ++I)
    B.Run();

  std::vector<uint64_t> Ns, Instr;
  size_t PeakBytes = 0;
  for (unsigned I = 0; I != Repeats; ++I) {
    Counter.start();
    uint64_t T0 = nowNs();
    PeakBytes = B.Run();
    uint64_t T1 = nowNs();
    uint64_t Retired = Counter.stop();
    Ns.push_back(T1 - T0);
    if (Counter.available())
      Instr.push_back(Retired);
  }

  BenchRecord R;
  R.Name = B.Name;
  R.Workload = B.Workload;
  R.Reps = Repeats;
  R.NsMedian = medianOf(Ns);
  R.NsMad = madOf(Ns, R.NsMedian);
  R.PeakBytes = PeakBytes;
  R.HaveInstructions = !Instr.empty();
  R.Instructions = Instr.empty() ? 0 : medianOf(std::move(Instr));
  return R;
}

void writeJson(std::FILE *Out, const std::string &Suite, unsigned Warmup,
               unsigned Repeats, const std::vector<BenchRecord> &Records) {
  std::fprintf(Out,
               "{\"schema\":\"fcc-bench/1\",\"suite\":\"%s\","
               "\"warmup\":%u,\"repeats\":%u,\"benchmarks\":[",
               Suite.c_str(), Warmup, Repeats);
  for (size_t I = 0; I != Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    std::fprintf(Out,
                 "%s\n  {\"name\":\"%s\",\"workload\":\"%s\",\"reps\":%u,"
                 "\"ns_median\":%llu,\"ns_mad\":%llu,\"peak_bytes\":%zu",
                 I ? "," : "", R.Name.c_str(), R.Workload.c_str(), R.Reps,
                 static_cast<unsigned long long>(R.NsMedian),
                 static_cast<unsigned long long>(R.NsMad), R.PeakBytes);
    if (R.HaveInstructions)
      std::fprintf(Out, ",\"instructions_retired\":%llu}",
                   static_cast<unsigned long long>(R.Instructions));
    else
      std::fprintf(Out, "}"); // Counters unavailable: omit, don't null.
  }
  std::fprintf(Out, "\n]}\n");
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --suite=ci|smoke [--analysis=fast|legacy|...]\n"
               "       [--out=PATH] [--warmup=N] [--repeats=N] [--quality] "
               "[--list]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Suite, OutPath = "-";
  int64_t WarmupOverride = -1, RepeatsOverride = -1;
  bool ListOnly = false;
  bool Quality = false;
  AnalysisStrategy Analyses;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--suite=", 0) == 0) {
      Suite = Arg.substr(8);
    } else if (Arg.rfind("--analysis=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--analysis="));
      if (!parseAnalysisStrategy(Name, Analyses)) {
        std::fprintf(stderr, "fcc-bench: unknown analysis strategy '%s'\n",
                     Name.c_str());
        return 2;
      }
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
    } else if (Arg.rfind("--warmup=", 0) == 0) {
      uint64_t V = 0;
      if (!parseUint64Arg(Arg.substr(9), V)) {
        std::fprintf(stderr, "fcc-bench: bad --warmup argument '%s'\n",
                     Arg.substr(9).c_str());
        return 2;
      }
      WarmupOverride = static_cast<int64_t>(V);
    } else if (Arg.rfind("--repeats=", 0) == 0) {
      uint64_t V = 0;
      if (!parseUint64Arg(Arg.substr(10), V) || V == 0) {
        std::fprintf(stderr, "fcc-bench: bad --repeats argument '%s'\n",
                     Arg.substr(10).c_str());
        return 2;
      }
      RepeatsOverride = static_cast<int64_t>(V);
    } else if (Arg == "--quality") {
      Quality = true;
    } else if (Arg == "--list") {
      ListOnly = true;
    } else {
      std::fprintf(stderr, "fcc-bench: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  SuiteParams Params;
  if (Suite == "ci") {
    Params = {/*Warmup=*/3, /*Repeats=*/21, /*PaperRoutines=*/40,
              /*GenBudget=*/200};
  } else if (Suite == "smoke") {
    Params = {/*Warmup=*/1, /*Repeats=*/3, /*PaperRoutines=*/6,
              /*GenBudget=*/60};
  } else {
    std::fprintf(stderr, "fcc-bench: unknown or missing --suite '%s'\n",
                 Suite.c_str());
    return usage(Argv[0]);
  }
  if (WarmupOverride >= 0)
    Params.Warmup = static_cast<unsigned>(WarmupOverride);
  if (RepeatsOverride > 0)
    Params.Repeats = static_cast<unsigned>(RepeatsOverride);

  if (Quality) {
    if (ListOnly) {
      std::fprintf(stderr, "fcc-bench: --quality does not support --list\n");
      return 2;
    }
    std::vector<RoutineSpec> Specs = paperSuite(Params.PaperRoutines);
    std::vector<QualityRow> Rows = runQualitySuite(Specs);

    std::FILE *Out = stdout;
    if (OutPath != "-") {
      Out = std::fopen(OutPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "fcc-bench: cannot open '%s' for writing\n",
                     OutPath.c_str());
        return 2;
      }
    }
    writeQualityJson(Out, Suite, Params.PaperRoutines, Rows);
    if (Out != stdout)
      std::fclose(Out);

    // A configuration that changed behavior or failed to allocate is wrong
    // regardless of any baseline: fail the run itself, not just the diff.
    for (const QualityRow &R : Rows)
      if (R.Diverged != 0 || R.AllocFailures != 0) {
        std::fprintf(stderr,
                     "fcc-bench: %s: %u diverged, %u allocation failures\n",
                     R.Name.c_str(), R.Diverged, R.AllocFailures);
        return 1;
      }
    return 0;
  }

  std::vector<Benchmark> Benches = buildSuite(Params, Analyses);
  if (ListOnly) {
    for (const Benchmark &B : Benches)
      std::printf("%s (%s)\n", B.Name.c_str(), B.Workload.c_str());
    return 0;
  }

  InstructionCounter Counter;
  std::vector<BenchRecord> Records;
  Records.reserve(Benches.size());
  for (const Benchmark &B : Benches)
    Records.push_back(measure(B, Params.Warmup, Params.Repeats, Counter));

  std::FILE *Out = stdout;
  if (OutPath != "-") {
    Out = std::fopen(OutPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "fcc-bench: cannot open '%s' for writing\n",
                   OutPath.c_str());
      return 2;
    }
  }
  writeJson(Out, Suite, Params.Warmup, Params.Repeats, Records);
  if (Out != stdout)
    std::fclose(Out);
  return 0;
}
