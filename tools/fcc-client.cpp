//===- tools/fcc-client.cpp - Client for the compilation daemon -----------===//
//
// Submits a corpus to a running fcc-served instance over its Unix socket
// and reassembles the responses into a deterministic report. Units are
// materialized to IR text client-side (files are read, generated routines
// are generated and printed), so the daemon only ever sees "compile"
// requests with inline sources.
//
//   fcc-client --socket=PATH [DIR|FILE...] [options]
//
//   --socket=PATH       daemon socket (required)
//   --generate=N[:SEED] append N generated routines (default seed 1)
//   --window=N          max requests in flight per round (default 16)
//   --json=PATH         write {"units":[...]} to PATH ('-' for stdout),
//                       unit objects spliced verbatim from the daemon's
//                       responses — byte-identical to fcc-batch
//                       --no-timings units for the same corpus, except
//                       that daemon units carry no "path" member (the
//                       daemon only ever sees in-memory sources)
//   --expect-all-hits   fail (exit 3) unless every unit was a cache hit
//   --shutdown          send a graceful shutdown after the corpus
//   --quiet             suppress the summary line
//
// Overloaded responses are retried with backoff; the retry loop is the
// client half of the daemon's admission control.
//
// Exit status: 0 all units ok, 1 some unit failed, 2 usage/connect error,
// 3 --expect-all-hits violated.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "server/Json.h"
#include "service/BatchReport.h"
#include "service/WorkUnit.h"
#include "support/ArgParse.h"
#include "workload/ProgramGenerator.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fcc;

namespace {

struct ClientOptions {
  std::string SocketPath;
  std::vector<std::string> Paths;
  unsigned GenerateCount = 0;
  uint64_t GenerateSeed = 1;
  unsigned Window = 16;
  std::string JsonPath;
  bool ExpectAllHits = false;
  bool Shutdown = false;
  bool Quiet = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [DIR|FILE...] [--generate=N[:SEED]]\n"
               "       [--window=N] [--json=PATH] [--expect-all-hits]\n"
               "       [--shutdown] [--quiet]\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, ClientOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t Value = 0;
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(std::strlen("--socket="));
    } else if (Arg.rfind("--generate=", 0) == 0) {
      std::string Spec = Arg.substr(std::strlen("--generate="));
      std::string CountPart = Spec;
      size_t Colon = Spec.find(':');
      if (Colon != std::string::npos) {
        CountPart = Spec.substr(0, Colon);
        if (!parseUint64Arg(Spec.substr(Colon + 1), Opts.GenerateSeed)) {
          std::fprintf(stderr, "bad --generate seed in '%s'\n", Arg.c_str());
          return false;
        }
      }
      if (!parseUint64Arg(CountPart, Value) ||
          Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad --generate count in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.GenerateCount = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--window=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--window=")), Value) ||
          Value == 0 || Value > 4096) {
        std::fprintf(stderr, "bad --window value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Window = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--json=", 0) == 0) {
      Opts.JsonPath = Arg.substr(7);
    } else if (Arg == "--expect-all-hits") {
      Opts.ExpectAllHits = true;
    } else if (Arg == "--shutdown") {
      Opts.Shutdown = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Opts.Paths.push_back(Arg);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.SocketPath.empty();
}

/// One materialized request: the unit's name and its full IR text.
struct ClientUnit {
  std::string Name;
  std::string Source;
  // Response state:
  bool Done = false;
  bool Cached = false;
  bool Ok = false;
  std::string UnitJson; ///< The "unit" object, verbatim from the wire.
  std::string Error;
};

bool materialize(const ClientOptions &Opts, std::vector<ClientUnit> &Out,
                 std::string &Error) {
  std::vector<WorkUnit> Units;
  for (const std::string &Path : Opts.Paths)
    if (!collectUnits(Path, Units, Error))
      return false;
  if (Opts.GenerateCount != 0) {
    std::vector<WorkUnit> Gen =
        generatedCorpus(Opts.GenerateCount, Opts.GenerateSeed);
    for (WorkUnit &U : Gen)
      Units.push_back(std::move(U));
  }
  for (WorkUnit &U : Units) {
    ClientUnit C;
    C.Name = U.Name;
    if (U.Generated) {
      Module M;
      generateProgram(M, U.Name, U.GenOpts);
      C.Source = printModule(M);
    } else if (!U.Path.empty()) {
      std::ifstream In(U.Path);
      if (!In) {
        Error = "cannot open " + U.Path;
        return false;
      }
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      C.Source = Buffer.str();
    } else {
      C.Source = U.Source;
    }
    Out.push_back(std::move(C));
  }
  return true;
}

/// Blocking line-oriented connection to the daemon.
class Connection {
public:
  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool connect(const std::string &Path, std::string &Error) {
    sockaddr_un Addr{};
    if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
      Error = "bad socket path '" + Path + "'";
      return false;
    }
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      Error = "cannot connect to " + Path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  bool sendLine(const std::string &Line) {
    std::string Framed = Line;
    Framed += '\n';
    size_t Off = 0;
    while (Off < Framed.size()) {
      ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  /// What reading the next response line produced. The protocol frames
  /// every response as one newline-terminated line, so bytes buffered at
  /// EOF are a half-written response — a protocol error distinct from a
  /// clean close, never silently discarded.
  enum class RecvStatus {
    Line,      ///< A complete line was read into the out-parameter.
    Eof,       ///< Clean close: connection ended on a line boundary.
    Truncated, ///< Close mid-line: unterminated bytes were buffered.
  };

  RecvStatus recvLine(std::string &Line) {
    while (true) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return RecvStatus::Line;
      }
      char Chunk[1 << 16];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return Buf.empty() ? RecvStatus::Eof : RecvStatus::Truncated;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// Bytes of an unterminated final line (valid after Truncated).
  size_t truncatedBytes() const { return Buf.size(); }

private:
  int Fd = -1;
  std::string Buf;
};

/// Builds one compile request; id doubles as the unit index so responses
/// correlate to corpus positions directly.
std::string compileRequest(unsigned Index, const ClientUnit &U) {
  std::string Out = "{\"op\":\"compile\",\"id\":" + std::to_string(Index) +
                    ",\"index\":" + std::to_string(Index) + ",\"name\":";
  appendJsonEscaped(Out, U.Name);
  Out += ",\"source\":";
  appendJsonEscaped(Out, U.Source);
  Out += '}';
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  ClientOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  std::vector<ClientUnit> Units;
  std::string Error;
  if (!materialize(Opts, Units, Error)) {
    std::fprintf(stderr, "fcc-client: %s\n", Error.c_str());
    return 2;
  }
  if (Units.empty() && !Opts.Shutdown) {
    std::fprintf(stderr, "fcc-client: no work units\n");
    return 2;
  }

  Connection Conn;
  if (!Conn.connect(Opts.SocketPath, Error)) {
    std::fprintf(stderr, "fcc-client: %s\n", Error.c_str());
    return 2;
  }

  // Windowed submission: send up to --window requests, read exactly that
  // many responses (they may arrive out of order; ids correlate), then
  // re-queue anything the daemon rejected as overloaded, with backoff.
  std::deque<unsigned> Pending;
  for (unsigned I = 0; I != Units.size(); ++I)
    Pending.push_back(I);
  unsigned BackoffMs = 5;
  while (!Pending.empty()) {
    std::vector<unsigned> Round;
    while (!Pending.empty() && Round.size() < Opts.Window) {
      Round.push_back(Pending.front());
      Pending.pop_front();
    }
    for (unsigned I : Round) {
      if (!Conn.sendLine(compileRequest(I, Units[I]))) {
        std::fprintf(stderr, "fcc-client: send failed\n");
        return 2;
      }
    }
    std::vector<unsigned> Retry;
    for (size_t R = 0; R != Round.size(); ++R) {
      std::string Line;
      Connection::RecvStatus RS = Conn.recvLine(Line);
      if (RS == Connection::RecvStatus::Truncated) {
        std::fprintf(stderr,
                     "fcc-client: protocol error: connection closed mid-"
                     "response (%zu unterminated bytes buffered)\n",
                     Conn.truncatedBytes());
        return 2;
      }
      if (RS != Connection::RecvStatus::Line) {
        std::fprintf(stderr, "fcc-client: connection closed by daemon\n");
        return 2;
      }
      json::Value V;
      if (!json::parse(Line, V, Error)) {
        std::fprintf(stderr, "fcc-client: bad response: %s\n",
                     Error.c_str());
        return 2;
      }
      int64_t Id = V.intOr("id", -1);
      if (Id < 0 || static_cast<size_t>(Id) >= Units.size()) {
        std::fprintf(stderr, "fcc-client: response with unknown id\n");
        return 2;
      }
      ClientUnit &U = Units[static_cast<size_t>(Id)];
      std::string Status = V.strOr("status", "");
      if (Status == "overloaded") {
        Retry.push_back(static_cast<unsigned>(Id));
        continue;
      }
      if (Status != "ok") {
        U.Done = true;
        U.Error = V.strOr("error", "request failed");
        continue;
      }
      U.Done = true;
      U.Cached = V.boolOr("cached", false);
      const json::Value *Unit = V.find("unit");
      if (const json::Value *St = Unit ? Unit->find("status") : nullptr)
        U.Ok = St->kind() == json::Value::Kind::Str && St->str() == "ok";
      if (!U.Ok && Unit)
        U.Error = Unit->strOr("error", "unit failed");
      // Splice the unit object verbatim: it is the response's last member
      // (the line ends "...,\"unit\":{...}}"), so no JSON writer is needed
      // to reproduce the daemon's exact bytes.
      size_t P = Line.find(",\"unit\":");
      if (P != std::string::npos && Line.size() > P + 9)
        U.UnitJson = Line.substr(P + 8, Line.size() - (P + 8) - 1);
    }
    if (!Retry.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
      if (BackoffMs < 100)
        BackoffMs *= 2;
      for (unsigned I : Retry)
        Pending.push_front(I);
    } else {
      BackoffMs = 5;
    }
  }

  if (Opts.Shutdown) {
    if (!Conn.sendLine("{\"op\":\"shutdown\",\"id\":-1}")) {
      std::fprintf(stderr, "fcc-client: send failed\n");
      return 2;
    }
    std::string Line; // The daemon acks, then drains and closes.
    if (Conn.recvLine(Line) == Connection::RecvStatus::Truncated) {
      std::fprintf(stderr,
                   "fcc-client: protocol error: connection closed mid-"
                   "response (%zu unterminated bytes buffered)\n",
                   Conn.truncatedBytes());
      return 2;
    }
  }

  unsigned Ok = 0, Hit = 0;
  for (const ClientUnit &U : Units) {
    if (U.Ok)
      ++Ok;
    if (U.Cached)
      ++Hit;
  }

  if (!Opts.JsonPath.empty()) {
    std::string Json = "{\"units\":[";
    for (size_t I = 0; I != Units.size(); ++I) {
      if (I)
        Json += ',';
      Json += Units[I].UnitJson;
    }
    Json += "]}";
    if (Opts.JsonPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream Out(Opts.JsonPath, std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "fcc-client: cannot write %s\n",
                     Opts.JsonPath.c_str());
        return 2;
      }
      Out << Json << '\n';
    }
  }

  if (!Opts.Quiet) {
    for (const ClientUnit &U : Units)
      if (U.Done && !U.Ok)
        std::fprintf(stderr, "FAIL %-24s %s\n", U.Name.c_str(),
                     U.Error.c_str());
    std::printf("%zu units (%u ok, %zu failed), %u cache hits, %zu misses\n",
                Units.size(), Ok, Units.size() - Ok, Hit,
                Units.size() - Hit);
  }

  if (Ok != Units.size())
    return 1;
  if (Opts.ExpectAllHits && Hit != Units.size())
    return 3;
  return 0;
}
