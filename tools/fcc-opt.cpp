//===- tools/fcc-opt.cpp - Command-line driver ----------------------------===//
//
// Standalone driver: read a textual-IR file, run one of the paper's
// SSA-round-trip pipelines over every function, optionally clean up and
// execute, and print the result.
//
//   fcc-opt FILE.ir [options]
//
//   --pipeline=new|standard|briggs|briggs*   conversion to run (default new)
//   --analysis=fast|legacy|dsu+sparse|chk+dense|dsu+dense|chk+sparse
//                     dominator / liveness implementations backing the
//                     pipeline (default fast = dsu+sparse); output is
//                     byte-identical across choices, only build time moves
//   --machine=uniformN|dsp|embedded
//                     run the register allocator after the pipeline: color
//                     against that machine's banks, inserting spill/reload
//                     code until allocation succeeds
//   --passes=SEQ      comma-separated optimization passes (sccp, adce, pre)
//                     run on the SSA form before coalescing; unknown names
//                     are rejected listing the known passes
//   --ssa-only        stop in SSA form (pruned, copies folded) and print it
//   --no-fold         build SSA without copy folding (with --ssa-only)
//   --copyprop        run local copy propagation after the pipeline
//   --dce             run dead-code elimination after the pipeline
//   --strict          insert entry initializations for non-strict inputs
//   --check           validate the coalescer's partition with the
//                     independent CoalescingChecker (new pipeline)
//   --trace           narrate the coalescer's decisions (new pipeline)
//   --trace=PATH      write a Chrome trace (chrome://tracing / Perfetto)
//                     of every pipeline phase to PATH
//   --stats           print per-function and per-phase statistics
//   --run ARGS...     execute each function on the integer ARGS
//
//===----------------------------------------------------------------------===//

#include "analysis/CFGUtils.h"
#include "analysis/DominatorTree.h"
#include "analysis/Liveness.h"
#include "coalesce/CoalescingChecker.h"
#include "coalesce/FastCoalescer.h"
#include "interp/Interpreter.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "opt/CopyPropagation.h"
#include "opt/DeadCodeElim.h"
#include "opt/PassManager.h"
#include "pipeline/Pipeline.h"
#include "regalloc/SpillRewriter.h"
#include "ssa/SSABuilder.h"
#include "support/ArgParse.h"
#include "support/Stats.h"
#include "support/TraceWriter.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace fcc;

namespace {

struct DriverOptions {
  std::string InputPath;
  std::optional<PipelineKind> Pipeline = PipelineKind::New;
  AnalysisStrategy Analyses;
  std::optional<MachineModel> Machine;
  std::vector<PassKind> Passes;
  bool SsaOnly = false;
  bool NoFold = false;
  bool CopyProp = false;
  bool Dce = false;
  bool Strict = false;
  bool Check = false;
  bool Trace = false;
  bool Stats = false;
  bool Execute = false;
  std::string TracePath;
  std::vector<int64_t> RunArgs;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s FILE.ir [--pipeline=new|standard|briggs|briggs*]\n"
               "       [--analysis=fast|legacy|dsu+sparse|chk+dense|"
               "dsu+dense|chk+sparse]\n"
               "       [--machine=uniformN|dsp|embedded] "
               "[--passes=sccp,adce,pre]\n"
               "       [--ssa-only] [--no-fold] [--copyprop] [--dce] "
               "[--strict] [--check] [--trace] [--trace=PATH] [--stats]\n"
               "       [--run ARGS...]\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--ssa-only")
      Opts.SsaOnly = true;
    else if (Arg == "--no-fold")
      Opts.NoFold = true;
    else if (Arg == "--copyprop")
      Opts.CopyProp = true;
    else if (Arg == "--dce")
      Opts.Dce = true;
    else if (Arg == "--strict")
      Opts.Strict = true;
    else if (Arg == "--check")
      Opts.Check = true;
    else if (Arg == "--trace")
      Opts.Trace = true;
    else if (Arg.rfind("--trace=", 0) == 0)
      Opts.TracePath = Arg.substr(std::strlen("--trace="));
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg.rfind("--pipeline=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--pipeline="));
      if (Name == "new")
        Opts.Pipeline = PipelineKind::New;
      else if (Name == "standard")
        Opts.Pipeline = PipelineKind::Standard;
      else if (Name == "briggs")
        Opts.Pipeline = PipelineKind::Briggs;
      else if (Name == "briggs*")
        Opts.Pipeline = PipelineKind::BriggsImproved;
      else {
        std::fprintf(stderr, "unknown pipeline '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--analysis=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--analysis="));
      if (!parseAnalysisStrategy(Name, Opts.Analyses)) {
        std::fprintf(stderr, "unknown analysis strategy '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--machine=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--machine="));
      MachineModel MM;
      if (!parseMachineModel(Name, MM)) {
        std::fprintf(stderr, "unknown machine model '%s'\n", Name.c_str());
        return false;
      }
      Opts.Machine = std::move(MM);
    } else if (Arg.rfind("--passes=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--passes="));
      std::string BadToken;
      if (!parsePassSequence(Name, Opts.Passes, &BadToken)) {
        std::fprintf(stderr, "unknown pass '%s' (known passes: %s)\n",
                     BadToken.c_str(), knownPassNames());
        return false;
      }
    } else if (Arg == "--run") {
      Opts.Execute = true;
      for (++I; I < Argc; ++I) {
        int64_t Value = 0;
        if (!parseInt64Arg(Argv[I], Value)) {
          std::fprintf(stderr, "bad --run argument '%s'\n", Argv[I]);
          return false;
        }
        Opts.RunArgs.push_back(Value);
      }
    } else if (!Arg.empty() && Arg[0] != '-' && Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.InputPath.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);
  if (Opts.Check && (Opts.SsaOnly || Opts.Pipeline != PipelineKind::New)) {
    std::fprintf(stderr,
                 "--check validates a coalescing partition; it requires "
                 "--pipeline=new (without --ssa-only)\n");
    return 2;
  }
  if (Opts.Machine && Opts.SsaOnly) {
    std::fprintf(stderr, "--machine allocates phi-free code; it cannot be "
                         "combined with --ssa-only\n");
    return 2;
  }
  if (!Opts.Passes.empty() && (Opts.Pipeline == PipelineKind::Briggs ||
                               Opts.Pipeline == PipelineKind::BriggsImproved)) {
    std::fprintf(stderr,
                 "--passes is not supported with the Briggs pipelines "
                 "(live-range webs assume unoptimized SSA)\n");
    return 2;
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Opts.InputPath.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  std::string Error;
  std::unique_ptr<Module> M = parseModule(Buffer.str(), Error);
  if (!M) {
    std::fprintf(stderr, "%s: %s\n", Opts.InputPath.c_str(), Error.c_str());
    return 1;
  }

  // Observability sinks: a stats registry behind --stats, a Chrome-trace
  // writer behind --trace=PATH. Either one instruments the pipeline runs.
  std::optional<StatsRegistry> Registry;
  if (Opts.Stats)
    Registry.emplace();
  std::optional<TraceWriter> TraceJson;
  if (!Opts.TracePath.empty())
    TraceJson.emplace();
  Instrumentation Instr;
  Instr.Stats = Registry ? &*Registry : nullptr;
  Instr.Trace = TraceJson ? &*TraceJson : nullptr;
  Instr.Unit = Opts.InputPath;
  const bool Observe = Instr.active();

  for (const auto &FPtr : M->functions()) {
    Function &F = *FPtr;
    if (Opts.Strict)
      enforceStrictness(F);
    if (!verifyFunction(F, Error)) {
      std::fprintf(stderr, "@%s does not verify: %s\n", F.name().c_str(),
                   Error.c_str());
      return 1;
    }
    if (!isStrict(F)) {
      std::fprintf(stderr,
                   "@%s is not strict (a use may precede every definition); "
                   "re-run with --strict\n",
                   F.name().c_str());
      return 1;
    }

    if (Opts.SsaOnly) {
      splitCriticalEdges(F);
      DominatorTree DT(F, Opts.Analyses.Dominators);
      SSABuildOptions Build;
      Build.FoldCopies = !Opts.NoFold;
      SSABuildStats Stats = buildSSA(F, DT, Build);
      if (Opts.Stats)
        std::printf("; @%s: %u phis, %u copies folded\n", F.name().c_str(),
                    Stats.PhisInserted, Stats.CopiesFolded);
      if (!Opts.Passes.empty()) {
        Instr.Function = F.name();
        PassManagerOptions PM;
        PM.Instr = Observe ? &Instr : nullptr;
        PassStats PS = runPassSequence(F, Opts.Passes, PM);
        if (Opts.Stats)
          std::printf("; @%s: passes folded %u consts, forwarded %u copies, "
                      "removed %u insts + %u phis, hoisted %u\n",
                      F.name().c_str(), PS.SccpConstants, PS.SccpCopies,
                      PS.InstsRemoved, PS.PhisRemoved, PS.PreHoisted);
      }
    } else if (Opts.Pipeline == PipelineKind::New &&
               (Opts.Trace || Opts.Check)) {
      // Expanded so the coalescer can narrate and the partition can be
      // audited before it rewrites anything.
      splitCriticalEdges(F);
      std::optional<DominatorTree> DT;
      DT.emplace(F, Opts.Analyses.Dominators);
      SSABuildOptions Build;
      Build.FoldCopies = true;
      buildSSA(F, *DT, Build);
      if (!Opts.Passes.empty()) {
        // Same stage order as the pipeline: optimize the SSA form, then
        // re-split edges and rebuild dominance for the coalescer.
        Instr.Function = F.name();
        PassManagerOptions PM;
        PM.Instr = Observe ? &Instr : nullptr;
        runPassSequence(F, Opts.Passes, PM);
        splitCriticalEdges(F);
        DT.emplace(F, Opts.Analyses.Dominators);
      }
      Liveness LV(F, Opts.Analyses.Liveness);
      FastCoalescerOptions Coalesce;
      if (Opts.Trace)
        Coalesce.Trace = stderr;
      Instr.Function = F.name();
      Coalesce.Instr = Observe ? &Instr : nullptr;
      FastCoalescer Coalescer(F, *DT, LV, Coalesce);
      Coalescer.computePartition();
      if (Opts.Check) {
        std::string CheckError;
        if (!checkCoalescing(
                F, LV, [&](const Variable *V) { return Coalescer.rep(V); },
                CheckError)) {
          std::fprintf(stderr, "@%s: coalescing check FAILED: %s\n",
                       F.name().c_str(), CheckError.c_str());
          return 1;
        }
        if (Opts.Stats)
          std::printf("; @%s: coalescing check passed\n", F.name().c_str());
      }
      Coalescer.rewrite();
      if (Opts.Machine) {
        // The expanded path ends where the pipeline would, so allocation
        // runs on the same phi-free code the one-shot path produces.
        SpillRewriteOptions SR;
        SR.Machine = *Opts.Machine;
        try {
          SpillRewriteResult R = insertSpillCode(F, SR);
          if (Opts.Stats)
            std::printf("; @%s: %u registers, %u spill stores, %u reloads, "
                        "%u ranges split, %u regalloc iterations\n",
                        F.name().c_str(), R.Alloc.RegistersUsed, R.SpillStores,
                        R.Reloads, R.RangesSplit, R.Iterations);
        } catch (const std::exception &E) {
          std::fprintf(stderr, "@%s: %s\n", F.name().c_str(), E.what());
          return 1;
        }
      }
    } else {
      Instr.Function = F.name();
      PipelineOptions Pipe;
      Pipe.Kind = *Opts.Pipeline;
      Pipe.Analyses = Opts.Analyses;
      Pipe.Machine = Opts.Machine ? &*Opts.Machine : nullptr;
      Pipe.Passes = Opts.Passes;
      Pipe.Instr = Observe ? &Instr : nullptr;
      PipelineResult Result;
      try {
        Result = runPipeline(F, Pipe);
      } catch (const std::exception &E) {
        std::fprintf(stderr, "@%s: %s\n", F.name().c_str(), E.what());
        return 1;
      }
      if (Opts.Stats) {
        std::printf("; @%s (%s): %u us, %u phis, %u copies left, peak %zu "
                    "bytes\n",
                    F.name().c_str(), pipelineName(*Opts.Pipeline),
                    static_cast<unsigned>(Result.TimeMicros),
                    Result.PhisInserted, Result.StaticCopies,
                    Result.PeakBytes);
        if (Result.Allocated)
          std::printf("; @%s: %u registers, %u spill stores, %u reloads, "
                      "%u ranges split, %u regalloc iterations\n",
                      F.name().c_str(), Result.RegistersUsed,
                      Result.SpillStores, Result.Reloads, Result.RangesSplit,
                      Result.RegallocIterations);
        if (!Result.Phases.empty()) {
          std::printf(";   phases:");
          for (const PhaseSample &P : Result.Phases)
            std::printf(" %s %lluus", P.Name,
                        static_cast<unsigned long long>(P.Micros));
          std::printf("\n");
        }
      }
    }

    if (Opts.CopyProp) {
      unsigned Retargeted = propagateCopiesLocally(F);
      if (Opts.Stats)
        std::printf("; @%s: copy propagation retargeted %u uses\n",
                    F.name().c_str(), Retargeted);
    }
    if (Opts.Dce) {
      unsigned Removed = eliminateDeadCode(F);
      if (Opts.Stats)
        std::printf("; @%s: DCE removed %u instructions\n", F.name().c_str(),
                    Removed);
    }

    if (!verifyFunction(F, Error)) {
      std::fprintf(stderr, "internal error: output does not verify: %s\n",
                   Error.c_str());
      return 1;
    }
    std::fputs(printFunction(F).c_str(), stdout);
    std::fputc('\n', stdout);

    if (Opts.Execute) {
      ExecutionResult R = Interpreter().run(F, Opts.RunArgs);
      if (!R.Completed) {
        std::printf("; @%s: hit the step limit\n", F.name().c_str());
      } else if (Opts.Machine) {
        std::printf("; @%s(...) = %lld  (%llu instructions, %llu copies, "
                    "%llu spill ops)\n",
                    F.name().c_str(),
                    static_cast<long long>(R.ReturnValue),
                    static_cast<unsigned long long>(R.InstructionsExecuted),
                    static_cast<unsigned long long>(R.CopiesExecuted),
                    static_cast<unsigned long long>(R.SpillOpsExecuted));
      } else {
        std::printf("; @%s(...) = %lld  (%llu instructions, %llu copies)\n",
                    F.name().c_str(),
                    static_cast<long long>(R.ReturnValue),
                    static_cast<unsigned long long>(R.InstructionsExecuted),
                    static_cast<unsigned long long>(R.CopiesExecuted));
      }
    }
  }

  if (Registry) {
    // The aggregated tables, as IR comments so the output stays parseable.
    std::string Tables =
        renderStats(Registry->phases(), Registry->counters(),
                    /*IncludeTimings=*/true);
    size_t Pos = 0;
    while (Pos < Tables.size()) {
      size_t Eol = Tables.find('\n', Pos);
      std::printf("; %.*s\n", static_cast<int>(Eol - Pos), &Tables[Pos]);
      Pos = Eol + 1;
    }
  }
  if (TraceJson) {
    std::string TraceError;
    if (!TraceJson->writeFile(Opts.TracePath, TraceError)) {
      std::fprintf(stderr, "%s\n", TraceError.c_str());
      return 1;
    }
  }
  return 0;
}
