//===- tools/fcc-fuzz.cpp - Differential fuzzing driver -------------------===//
//
// Front end for the fuzzing subsystem: generate a seeded stream of programs,
// confront each with the differential oracle across every pipeline
// configuration, and shrink each divergence into a minimal `.fcc` repro.
//
//   fcc-fuzz [options]
//
//   --runs=N            programs to generate and check (default 100)
//   --seed=N            master seed; run i derives from (seed, i) (default 1)
//   --jobs=N            worker threads (default 1; 0 = hardware)
//   --registers=N       bank size for the oracle's register-allocation and
//                       spill-rewrite cross-checks (default 8; 0 disables
//                       them; small values like 2 force heavy spilling)
//   --passes=SEQ        run one extra fast-checked oracle configuration
//                       with this optimization pass sequence (sccp, adce,
//                       pre) on top of the built-in pass configs
//   --time-budget=SECS  stop launching runs after SECS seconds (0 = off)
//   --max-findings=N    stop launching runs after N findings (0 = off)
//   --out-dir=PATH      write summary.json and one .fcc repro per finding
//   --json=PATH         also write the JSON summary to PATH ('-' = stdout)
//   --no-reduce         keep findings unreduced (faster triage sweeps)
//   --quiet             suppress the human-readable summary
//
// The JSON summary contains no timings and no job count: for a fixed
// (--seed, --runs) pair without --time-budget/--max-findings it is
// byte-identical across --jobs values. Repros replay with
//   fcc-opt out/fuzz-NNNNNN.fcc --pipeline=new --check --run ...
// or in bulk with fcc-batch (which picks up .fcc files next to .ir).
//
// Exit status: 0 clean, 1 findings (or rejected inputs), 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "opt/PassManager.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

using namespace fcc;

namespace {

struct ToolOptions {
  FuzzOptions Fuzz;
  std::string OutDir;
  std::string JsonPath;
  bool Quiet = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--runs=N] [--seed=N] [--jobs=N] [--registers=N]\n"
               "       [--passes=sccp,adce,pre] [--time-budget=SECS]\n"
               "       [--max-findings=N] [--out-dir=PATH] [--json=PATH]\n"
               "       [--no-reduce] [--quiet]\n",
               Argv0);
  return 2;
}

bool parseUnsignedFlag(const std::string &Arg, const char *Flag,
                       unsigned &Out) {
  uint64_t Value = 0;
  if (!parseUint64Arg(Arg.substr(std::strlen(Flag)), Value) ||
      Value > std::numeric_limits<unsigned>::max()) {
    std::fprintf(stderr, "bad %s value in '%s'\n",
                 std::string(Flag, std::strlen(Flag) - 1).c_str(),
                 Arg.c_str());
    return false;
  }
  Out = static_cast<unsigned>(Value);
  return true;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--runs=", 0) == 0) {
      if (!parseUnsignedFlag(Arg, "--runs=", Opts.Fuzz.Runs))
        return false;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(7), Opts.Fuzz.Seed)) {
        std::fprintf(stderr, "bad --seed value in '%s'\n", Arg.c_str());
        return false;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUnsignedFlag(Arg, "--jobs=", Opts.Fuzz.Jobs))
        return false;
    } else if (Arg.rfind("--registers=", 0) == 0) {
      if (!parseUnsignedFlag(Arg, "--registers=", Opts.Fuzz.Oracle.Registers))
        return false;
    } else if (Arg.rfind("--passes=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--passes="));
      std::string BadToken;
      if (!parsePassSequence(Name, Opts.Fuzz.Oracle.Passes, &BadToken)) {
        std::fprintf(stderr, "unknown pass '%s' (known passes: %s)\n",
                     BadToken.c_str(), knownPassNames());
        return false;
      }
    } else if (Arg.rfind("--time-budget=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--time-budget=")),
                          Opts.Fuzz.TimeBudgetSeconds)) {
        std::fprintf(stderr, "bad --time-budget value in '%s'\n",
                     Arg.c_str());
        return false;
      }
    } else if (Arg.rfind("--max-findings=", 0) == 0) {
      if (!parseUnsignedFlag(Arg, "--max-findings=", Opts.Fuzz.MaxFindings))
        return false;
    } else if (Arg.rfind("--out-dir=", 0) == 0) {
      Opts.OutDir = Arg.substr(std::strlen("--out-dir="));
      if (Opts.OutDir.empty()) {
        std::fprintf(stderr, "empty --out-dir\n");
        return false;
      }
    } else if (Arg.rfind("--json=", 0) == 0) {
      Opts.JsonPath = Arg.substr(7);
    } else if (Arg == "--no-reduce") {
      Opts.Fuzz.Reduce = false;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

bool writeFile(const std::filesystem::path &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

/// A repro is the reduced IR preceded by a `;`-comment header, so the file
/// replays as-is under fcc-opt/fcc-batch (the lexer skips comments).
std::string reproText(const FuzzFinding &F) {
  std::string Out;
  Out += "; fcc-fuzz repro: run " + std::to_string(F.RunIndex) +
         ", program seed " + std::to_string(F.ProgramSeed) + "\n";
  Out += "; kind: " + F.Kind + "\n";
  Out += "; config: " + F.Config + "\n";
  Out += "; detail: " + F.Detail + "\n";
  Out += "; replay: fcc-opt " + F.ReproFile +
         " --pipeline=new --check --run <args>\n";
  Out += F.ReducedIr;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  FuzzReport Report = runFuzzCampaign(Opts.Fuzz);
  std::string Json = Report.toJson();

  if (!Opts.OutDir.empty()) {
    std::error_code Ec;
    std::filesystem::path Dir(Opts.OutDir);
    std::filesystem::create_directories(Dir, Ec);
    if (Ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", Opts.OutDir.c_str(),
                   Ec.message().c_str());
      return 2;
    }
    if (!writeFile(Dir / "summary.json", Json + "\n")) {
      std::fprintf(stderr, "cannot write %s/summary.json\n",
                   Opts.OutDir.c_str());
      return 2;
    }
    for (const FuzzFinding &F : Report.Findings) {
      if (!writeFile(Dir / F.ReproFile, reproText(F))) {
        std::fprintf(stderr, "cannot write %s/%s\n", Opts.OutDir.c_str(),
                     F.ReproFile.c_str());
        return 2;
      }
    }
  }

  if (!Opts.JsonPath.empty()) {
    if (Opts.JsonPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
      std::fputc('\n', stdout);
    } else if (!writeFile(Opts.JsonPath, Json + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
      return 2;
    }
  }

  if (!Opts.Quiet) {
    std::fputs(Report.summary().c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return Report.clean() ? 0 : 1;
}
