//===- tools/fcc-batch.cpp - Parallel batch driver ------------------------===//
//
// Batch front end for the compilation service: compile a corpus of IR files
// and/or generated routines across worker threads and emit a machine-
// readable JSON report. Per-unit failures (unreadable, unparsable,
// non-verifying, over budget) are reported, never fatal; the exit status
// reflects whether every unit succeeded.
//
//   fcc-batch DIR|FILE... [options]
//
//   --pipeline=new|standard|briggs|briggs*  configuration (default new)
//   --analysis=fast|legacy|dsu+sparse|chk+dense|dsu+dense|chk+sparse
//                       analysis implementations backing the pipeline
//                       (default fast = dsu+sparse); reports are
//                       byte-identical across choices
//   --machine=uniformN|dsp|embedded
//                       run the register allocator after the pipeline on
//                       every unit; reports gain per-function and total
//                       spill columns (spill_stores, reloads, ...)
//   --passes=SEQ        comma-separated optimization passes (sccp, adce,
//                       pre) run on every unit's SSA form before the
//                       coalescing pipeline; folded into the cache key
//   --jobs=N            worker threads (default 1; 0 = hardware)
//   --generate=N[:SEED] append N generated routines (default seed 1)
//   --seed=N            generation seed (alternative to --generate's :SEED;
//                       whichever flag comes last wins)
//   --json=PATH         write the JSON report to PATH ('-' for stdout)
//   --no-timings        deterministic report: omit timings and job count,
//                       so reports from different --jobs compare equal
//   --stats             aggregate per-phase timers and named counters
//                       across workers and print them after the summary
//   --cache[=BYTES]     dedup identical and alpha-equivalent units within
//                       the batch through a result cache (default budget
//                       256 MiB); with --stats the deterministic
//                       cache.hits/cache.misses counters land in the
//                       report's "stats" key, byte-identical across --jobs
//   --trace=PATH        write a Chrome trace (chrome://tracing / Perfetto)
//                       of every pipeline phase on every worker to PATH
//   --check             validate each New-pipeline partition (checker)
//   --run ARG,...       execute every function on the integer args
//   --strict            insert entry initializations for non-strict inputs
//   --max-instructions=N  per-unit input-size budget (0 = unlimited)
//   --time-budget-ms=N    per-unit wall-clock budget (0 = unlimited)
//   --quiet             suppress the human-readable summary on stdout
//
// Exit status: 0 all units ok, 1 some unit failed, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "server/ResultCache.h"
#include "service/CompilationService.h"
#include "service/WorkUnit.h"
#include "support/ArgParse.h"
#include "support/TraceWriter.h"

#include <memory>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

using namespace fcc;

namespace {

struct BatchOptions {
  std::vector<std::string> Paths;
  ServiceOptions Service;
  unsigned GenerateCount = 0;
  uint64_t GenerateSeed = 1;
  std::string JsonPath;
  std::string TracePath;
  bool UseCache = false;
  size_t CacheBytes = 256u << 20;
  bool IncludeTimings = true;
  bool ShowStats = false;
  bool Quiet = false;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s DIR|FILE... [--pipeline=new|standard|briggs|briggs*]\n"
      "       [--analysis=fast|legacy|dsu+sparse|chk+dense|dsu+dense|"
      "chk+sparse]\n"
      "       [--machine=uniformN|dsp|embedded] [--passes=sccp,adce,pre]\n"
      "       [--jobs=N] [--generate=N[:SEED]] [--seed=N] [--json=PATH]\n"
      "       [--no-timings] [--cache[=BYTES]]\n"
      "       [--stats] [--trace=PATH] [--check] [--run ARG,...] [--strict]\n"
      "       [--max-instructions=N] [--time-budget-ms=N] [--quiet]\n",
      Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, BatchOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t Value = 0;
    if (Arg.rfind("--pipeline=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--pipeline="));
      if (Name == "new")
        Opts.Service.Pipeline = PipelineKind::New;
      else if (Name == "standard")
        Opts.Service.Pipeline = PipelineKind::Standard;
      else if (Name == "briggs")
        Opts.Service.Pipeline = PipelineKind::Briggs;
      else if (Name == "briggs*")
        Opts.Service.Pipeline = PipelineKind::BriggsImproved;
      else {
        std::fprintf(stderr, "unknown pipeline '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--analysis=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--analysis="));
      if (!parseAnalysisStrategy(Name, Opts.Service.Analyses)) {
        std::fprintf(stderr, "unknown analysis strategy '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--machine=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--machine="));
      MachineModel MM;
      if (!parseMachineModel(Name, MM)) {
        std::fprintf(stderr, "unknown machine model '%s'\n", Name.c_str());
        return false;
      }
      Opts.Service.Machine = std::move(MM);
    } else if (Arg.rfind("--passes=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--passes="));
      std::string BadToken;
      if (!parsePassSequence(Name, Opts.Service.Passes, &BadToken)) {
        std::fprintf(stderr, "unknown pass '%s' (known passes: %s)\n",
                     BadToken.c_str(), knownPassNames());
        return false;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      // parseUint64Arg rejects a sign outright, so --jobs=-1 can never wrap
      // into a huge thread count; the explicit range check keeps the later
      // static_cast<unsigned> lossless.
      if (!parseUint64Arg(Arg.substr(7), Value) ||
          Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad --jobs value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.Jobs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--generate=", 0) == 0) {
      std::string Spec = Arg.substr(std::strlen("--generate="));
      std::string CountPart = Spec;
      size_t Colon = Spec.find(':');
      if (Colon != std::string::npos) {
        CountPart = Spec.substr(0, Colon);
        if (!parseUint64Arg(Spec.substr(Colon + 1), Opts.GenerateSeed)) {
          std::fprintf(stderr, "bad --generate seed in '%s'\n", Arg.c_str());
          return false;
        }
      }
      if (!parseUint64Arg(CountPart, Value) ||
          Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad --generate count in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.GenerateCount = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(7), Opts.GenerateSeed)) {
        std::fprintf(stderr, "bad --seed value in '%s'\n", Arg.c_str());
        return false;
      }
    } else if (Arg.rfind("--json=", 0) == 0) {
      Opts.JsonPath = Arg.substr(7);
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opts.TracePath = Arg.substr(std::strlen("--trace="));
    } else if (Arg == "--no-timings") {
      Opts.IncludeTimings = false;
    } else if (Arg == "--cache") {
      Opts.UseCache = true;
    } else if (Arg.rfind("--cache=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--cache=")), Value) ||
          Value == 0) {
        std::fprintf(stderr, "bad --cache value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.UseCache = true;
      Opts.CacheBytes = static_cast<size_t>(Value);
    } else if (Arg == "--stats") {
      Opts.ShowStats = true;
      Opts.Service.CollectStats = true;
    } else if (Arg == "--check") {
      Opts.Service.CheckPartition = true;
    } else if (Arg == "--strict") {
      Opts.Service.EnforceStrictness = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg.rfind("--max-instructions=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--max-instructions=")),
                          Value) ||
          Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.MaxUnitInstructions = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--time-budget-ms=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--time-budget-ms=")),
                          Value)) {
        std::fprintf(stderr, "bad value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.MaxUnitMicros = Value * 1000;
    } else if (Arg == "--run") {
      Opts.Service.Execute = true;
      // The next argument is the comma-separated list when it is not a
      // flag; a leading '-' followed by a digit is a negative value, not a
      // flag.
      if (I + 1 < Argc &&
          (Argv[I + 1][0] != '-' ||
           std::isdigit(static_cast<unsigned char>(Argv[I + 1][1])))) {
        std::string Args = Argv[++I];
        std::string BadToken;
        if (!splitIntList(Args, Opts.Service.ExecArgs, BadToken)) {
          std::fprintf(stderr, "bad --run argument '%s'\n",
                       BadToken.c_str());
          return false;
        }
      }
    } else if (!Arg.empty() && Arg[0] != '-') {
      Opts.Paths.push_back(Arg);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.Paths.empty() || Opts.GenerateCount != 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BatchOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);
  if (Opts.Service.CheckPartition &&
      Opts.Service.Pipeline != PipelineKind::New) {
    std::fprintf(stderr, "--check requires --pipeline=new\n");
    return 2;
  }
  if (!Opts.Service.Passes.empty() &&
      (Opts.Service.Pipeline == PipelineKind::Briggs ||
       Opts.Service.Pipeline == PipelineKind::BriggsImproved)) {
    std::fprintf(stderr,
                 "--passes is not supported with the Briggs pipelines "
                 "(live-range webs assume unoptimized SSA)\n");
    return 2;
  }

  std::vector<WorkUnit> Units;
  for (const std::string &Path : Opts.Paths) {
    std::string Error;
    if (!collectUnits(Path, Units, Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 2;
    }
  }
  if (Opts.GenerateCount != 0) {
    std::vector<WorkUnit> Gen =
        generatedCorpus(Opts.GenerateCount, Opts.GenerateSeed);
    for (WorkUnit &U : Gen)
      Units.push_back(std::move(U));
  }
  if (Units.empty()) {
    std::fprintf(stderr, "no work units (no .ir/.fcc files found)\n");
    return 2;
  }

  TraceWriter Trace;
  if (!Opts.TracePath.empty())
    Opts.Service.Trace = &Trace;

  std::unique_ptr<ResultCache> Cache;
  if (Opts.UseCache) {
    Cache = std::make_unique<ResultCache>(
        ResultCache::Options{Opts.CacheBytes, /*Shards=*/8});
    Opts.Service.Cache = Cache.get();
  }

  CompilationService Service(Opts.Service);
  BatchReport Report = Service.run(Units);

  if (!Opts.TracePath.empty()) {
    std::string TraceError;
    if (!Trace.writeFile(Opts.TracePath, TraceError)) {
      std::fprintf(stderr, "%s\n", TraceError.c_str());
      return 2;
    }
  }

  if (!Opts.JsonPath.empty()) {
    std::string Json = Report.toJson(Opts.IncludeTimings);
    if (Opts.JsonPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream Out(Opts.JsonPath, std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
        return 2;
      }
      Out << Json << '\n';
    }
  }

  if (!Opts.Quiet)
    std::fputs(Report.summary().c_str(), stdout);
  if (Opts.ShowStats)
    std::fputs(Report.statsText(Opts.IncludeTimings).c_str(), stdout);

  return Report.totals().Failed == 0 ? 0 : 1;
}
