//===- tools/fcc-batch.cpp - Parallel batch driver ------------------------===//
//
// Batch front end for the compilation service: compile a corpus of IR files
// and/or generated routines across worker threads and emit a machine-
// readable JSON report. Per-unit failures (unreadable, unparsable,
// non-verifying, over budget) are reported, never fatal; the exit status
// reflects whether every unit succeeded.
//
//   fcc-batch DIR|FILE... [options]
//
//   --pipeline=new|standard|briggs|briggs*  configuration (default new)
//   --jobs=N            worker threads (default 1; 0 = hardware)
//   --generate=N[:SEED] append N generated routines (default seed 1)
//   --json=PATH         write the JSON report to PATH ('-' for stdout)
//   --no-timings        deterministic report: omit timings and job count,
//                       so reports from different --jobs compare equal
//   --check             validate each New-pipeline partition (checker)
//   --run ARG,...       execute every function on the integer args
//   --strict            insert entry initializations for non-strict inputs
//   --max-instructions=N  per-unit input-size budget (0 = unlimited)
//   --time-budget-ms=N    per-unit wall-clock budget (0 = unlimited)
//   --quiet             suppress the human-readable summary on stdout
//
// Exit status: 0 all units ok, 1 some unit failed, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "service/CompilationService.h"
#include "service/WorkUnit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace fcc;

namespace {

struct BatchOptions {
  std::vector<std::string> Paths;
  ServiceOptions Service;
  unsigned GenerateCount = 0;
  uint64_t GenerateSeed = 1;
  std::string JsonPath;
  bool IncludeTimings = true;
  bool Quiet = false;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s DIR|FILE... [--pipeline=new|standard|briggs|briggs*]\n"
      "       [--jobs=N] [--generate=N[:SEED]] [--json=PATH] [--no-timings]\n"
      "       [--check] [--run ARG,...] [--strict] [--max-instructions=N]\n"
      "       [--time-budget-ms=N] [--quiet]\n",
      Argv0);
  return 2;
}

bool parseUnsigned(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, BatchOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t Value = 0;
    if (Arg.rfind("--pipeline=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--pipeline="));
      if (Name == "new")
        Opts.Service.Pipeline = PipelineKind::New;
      else if (Name == "standard")
        Opts.Service.Pipeline = PipelineKind::Standard;
      else if (Name == "briggs")
        Opts.Service.Pipeline = PipelineKind::Briggs;
      else if (Name == "briggs*")
        Opts.Service.Pipeline = PipelineKind::BriggsImproved;
      else {
        std::fprintf(stderr, "unknown pipeline '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(7), Value)) {
        std::fprintf(stderr, "bad --jobs value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.Jobs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--generate=", 0) == 0) {
      std::string Spec = Arg.substr(std::strlen("--generate="));
      std::string CountPart = Spec;
      size_t Colon = Spec.find(':');
      if (Colon != std::string::npos) {
        CountPart = Spec.substr(0, Colon);
        if (!parseUnsigned(Spec.substr(Colon + 1), Opts.GenerateSeed)) {
          std::fprintf(stderr, "bad --generate seed in '%s'\n", Arg.c_str());
          return false;
        }
      }
      if (!parseUnsigned(CountPart, Value)) {
        std::fprintf(stderr, "bad --generate count in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.GenerateCount = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--json=", 0) == 0) {
      Opts.JsonPath = Arg.substr(7);
    } else if (Arg == "--no-timings") {
      Opts.IncludeTimings = false;
    } else if (Arg == "--check") {
      Opts.Service.CheckPartition = true;
    } else if (Arg == "--strict") {
      Opts.Service.EnforceStrictness = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg.rfind("--max-instructions=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(std::strlen("--max-instructions=")),
                         Value)) {
        std::fprintf(stderr, "bad value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.MaxUnitInstructions = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--time-budget-ms=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(std::strlen("--time-budget-ms=")),
                         Value)) {
        std::fprintf(stderr, "bad value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.MaxUnitMicros = Value * 1000;
    } else if (Arg == "--run") {
      Opts.Service.Execute = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-') {
        std::string Args = Argv[++I];
        size_t Pos = 0;
        while (Pos < Args.size()) {
          size_t Comma = Args.find(',', Pos);
          if (Comma == std::string::npos)
            Comma = Args.size();
          Opts.Service.ExecArgs.push_back(
              std::strtoll(Args.substr(Pos, Comma - Pos).c_str(), nullptr,
                           10));
          Pos = Comma + 1;
        }
      }
    } else if (!Arg.empty() && Arg[0] != '-') {
      Opts.Paths.push_back(Arg);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.Paths.empty() || Opts.GenerateCount != 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BatchOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);
  if (Opts.Service.CheckPartition &&
      Opts.Service.Pipeline != PipelineKind::New) {
    std::fprintf(stderr, "--check requires --pipeline=new\n");
    return 2;
  }

  std::vector<WorkUnit> Units;
  for (const std::string &Path : Opts.Paths) {
    std::string Error;
    if (!collectUnits(Path, Units, Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 2;
    }
  }
  if (Opts.GenerateCount != 0) {
    std::vector<WorkUnit> Gen =
        generatedCorpus(Opts.GenerateCount, Opts.GenerateSeed);
    for (WorkUnit &U : Gen)
      Units.push_back(std::move(U));
  }
  if (Units.empty()) {
    std::fprintf(stderr, "no work units (no .ir files found)\n");
    return 2;
  }

  CompilationService Service(Opts.Service);
  BatchReport Report = Service.run(Units);

  if (!Opts.JsonPath.empty()) {
    std::string Json = Report.toJson(Opts.IncludeTimings);
    if (Opts.JsonPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream Out(Opts.JsonPath, std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
        return 2;
      }
      Out << Json << '\n';
    }
  }

  if (!Opts.Quiet)
    std::fputs(Report.summary().c_str(), stdout);

  return Report.totals().Failed == 0 ? 0 : 1;
}
