//===- tools/fcc-served.cpp - Compilation daemon --------------------------===//
//
// Long-lived compilation server: listens on a Unix domain socket, compiles
// line-delimited JSON requests on a shared thread pool, and serves repeat
// and alpha-equivalent submissions from a content-addressed result cache
// (see src/server/Server.h for the protocol).
//
//   fcc-served --socket=PATH [options]
//
//   --socket=PATH       Unix socket to listen on (required)
//   --jobs=N            pool worker threads (default 0 = hardware)
//   --cache-bytes=N     result-cache byte budget (default 256 MiB)
//   --max-queue=N       admitted-but-unanswered bound before requests are
//                       rejected as overloaded (default 256)
//   --pipeline=new|standard|briggs|briggs*  configuration (default new)
//   --machine=uniformN|dsp|embedded
//                       run the register allocator after the pipeline on
//                       every unit (spill columns appear in responses; the
//                       machine name is part of the cache fingerprint)
//   --passes=SEQ        comma-separated optimization passes (sccp, adce,
//                       pre) run on every unit's SSA form before the
//                       pipeline (part of the cache fingerprint)
//   --check             validate each New-pipeline partition (checker)
//   --strict            insert entry initializations for non-strict inputs
//   --run ARG,...       execute every function on the integer args
//   --max-instructions=N  per-unit input-size budget (0 = unlimited)
//   --quiet             suppress the startup/shutdown lines on stdout
//
// SIGINT/SIGTERM cancel in-flight work and drain; the protocol's
// "shutdown" op drains gracefully. Both unlink the socket on exit.
//
// Exit status: 0 clean shutdown, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/ArgParse.h"

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include <unistd.h>

using namespace fcc;

namespace {

/// The self-pipe write end, for the async-signal-safe stop handler.
volatile sig_atomic_t StopFd = -1;

void onStopSignal(int) {
  int Fd = StopFd;
  if (Fd >= 0) {
    char B = 'S';
    (void)!::write(Fd, &B, 1);
  }
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH [--jobs=N] [--cache-bytes=N]\n"
      "       [--max-queue=N] [--pipeline=new|standard|briggs|briggs*]\n"
      "       [--machine=uniformN|dsp|embedded] [--passes=sccp,adce,pre]\n"
      "       [--check] [--strict] [--run ARG,...] [--max-instructions=N]\n"
      "       [--quiet]\n",
      Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, Server::Options &Opts, bool &Quiet) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t Value = 0;
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(std::strlen("--socket="));
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(7), Value) ||
          Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad --jobs value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Jobs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--cache-bytes=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--cache-bytes=")),
                          Value) ||
          Value == 0) {
        std::fprintf(stderr, "bad --cache-bytes value in '%s'\n",
                     Arg.c_str());
        return false;
      }
      Opts.CacheBytes = static_cast<size_t>(Value);
    } else if (Arg.rfind("--max-queue=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--max-queue=")), Value) ||
          Value == 0 || Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad --max-queue value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.MaxQueue = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--pipeline=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--pipeline="));
      if (Name == "new")
        Opts.Service.Pipeline = PipelineKind::New;
      else if (Name == "standard")
        Opts.Service.Pipeline = PipelineKind::Standard;
      else if (Name == "briggs")
        Opts.Service.Pipeline = PipelineKind::Briggs;
      else if (Name == "briggs*")
        Opts.Service.Pipeline = PipelineKind::BriggsImproved;
      else {
        std::fprintf(stderr, "unknown pipeline '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--machine=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--machine="));
      MachineModel MM;
      if (!parseMachineModel(Name, MM)) {
        std::fprintf(stderr, "unknown machine model '%s'\n", Name.c_str());
        return false;
      }
      Opts.Service.Machine = std::move(MM);
    } else if (Arg.rfind("--passes=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--passes="));
      std::string BadToken;
      if (!parsePassSequence(Name, Opts.Service.Passes, &BadToken)) {
        std::fprintf(stderr, "unknown pass '%s' (known passes: %s)\n",
                     BadToken.c_str(), knownPassNames());
        return false;
      }
    } else if (Arg == "--check") {
      Opts.Service.CheckPartition = true;
    } else if (Arg == "--strict") {
      Opts.Service.EnforceStrictness = true;
    } else if (Arg.rfind("--max-instructions=", 0) == 0) {
      if (!parseUint64Arg(Arg.substr(std::strlen("--max-instructions=")),
                          Value) ||
          Value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "bad value in '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Service.MaxUnitInstructions = static_cast<unsigned>(Value);
    } else if (Arg == "--run") {
      Opts.Service.Execute = true;
      if (I + 1 < Argc &&
          (Argv[I + 1][0] != '-' ||
           std::isdigit(static_cast<unsigned char>(Argv[I + 1][1])))) {
        std::string Args = Argv[++I];
        std::string BadToken;
        if (!splitIntList(Args, Opts.Service.ExecArgs, BadToken)) {
          std::fprintf(stderr, "bad --run argument '%s'\n",
                       BadToken.c_str());
          return false;
        }
      }
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.SocketPath.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  Server::Options Opts;
  bool Quiet = false;
  if (!parseArgs(Argc, Argv, Opts, Quiet))
    return usage(Argv[0]);
  if (Opts.Service.CheckPartition &&
      Opts.Service.Pipeline != PipelineKind::New) {
    std::fprintf(stderr, "--check requires --pipeline=new\n");
    return 2;
  }
  if (!Opts.Service.Passes.empty() &&
      (Opts.Service.Pipeline == PipelineKind::Briggs ||
       Opts.Service.Pipeline == PipelineKind::BriggsImproved)) {
    std::fprintf(stderr,
                 "--passes is not supported with the Briggs pipelines "
                 "(live-range webs assume unoptimized SSA)\n");
    return 2;
  }

  Server Daemon(Opts);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "fcc-served: %s\n", Error.c_str());
    return 2;
  }

  StopFd = Daemon.stopFd();
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  if (!Quiet) {
    std::printf("fcc-served: listening on %s\n", Opts.SocketPath.c_str());
    std::fflush(stdout);
  }
  int Rc = Daemon.serve();
  if (!Quiet) {
    Server::Counters C = Daemon.counters();
    std::printf("fcc-served: drained (accepted %llu, rejected %llu, "
                "hits %llu, misses %llu, failed %llu)\n",
                static_cast<unsigned long long>(C.Accepted),
                static_cast<unsigned long long>(C.Rejected),
                static_cast<unsigned long long>(C.Hits),
                static_cast<unsigned long long>(C.Misses),
                static_cast<unsigned long long>(C.Failed));
  }
  return Rc;
}
